// Package topology is the public façade over the simulator's interconnect
// implementations: the 2D mesh of the paper's Parsytec GCel, the 2D torus,
// the hypercube and the binary fat-tree, plus a name-keyed registry through
// which topologies are selectable by string — from a config file or a CLI
// flag — without importing their packages.
//
// All registry builders take the canonical ROWSxCOLS size of the paper's
// platform: the mesh and the torus use the dimensions directly, while the
// hypercube and the fat-tree derive their size from the processor count
// rows*cols, which must then be a power of two.
//
// Applications embedding the simulator can add their own interconnects:
// implement Topology (see the interface contract) and Register a builder
// under a fresh name; every data management strategy runs on it unchanged.
package topology

import (
	"fmt"
	"math/bits"

	"diva/internal/mesh"
	"diva/internal/registry"
)

// The interconnect types, re-exported by alias so embedders never import
// diva/internal/... directly.
type (
	// Topology abstracts the interconnect of the simulated machine: a set
	// of processor nodes, directed links with stable ids, and a
	// deterministic shortest-path route between any two processors.
	Topology = mesh.Topology
	// Mesh is the paper's platform: an R×C mesh with row-major processor
	// ids and deterministic XY wormhole routing.
	Mesh = mesh.Mesh
	// Torus is the mesh with wrap-around links.
	Torus = mesh.Torus
	// Hypercube is the d-dimensional binary cube with e-cube routing.
	Hypercube = mesh.Hypercube
	// FatTree is the binary fat-tree with switch nodes, parallel links and
	// deterministic d-mod-k routing.
	FatTree = mesh.FatTree
	// Graph is a general connected graph with precomputed deterministic
	// BFS shortest-path routes: the escape hatch from regular
	// interconnects (random-regular and Erdős–Rényi nets, degraded
	// meshes, or any edge list via NewGraph).
	Graph = mesh.Graph
	// Coord addresses a mesh/torus processor by row and column.
	Coord = mesh.Coord
)

// NewMesh returns an R×C mesh. Dimensions must be positive.
func NewMesh(rows, cols int) (Mesh, error) {
	if rows <= 0 || cols <= 0 {
		return Mesh{}, fmt.Errorf("topology: mesh dimensions must be positive, have %dx%d", rows, cols)
	}
	return mesh.New(rows, cols), nil
}

// NewTorus returns an R×C torus. Dimensions must be positive.
func NewTorus(rows, cols int) (Torus, error) {
	if rows <= 0 || cols <= 0 {
		return Torus{}, fmt.Errorf("topology: torus dimensions must be positive, have %dx%d", rows, cols)
	}
	return mesh.NewTorus(rows, cols), nil
}

// NewHypercube returns a hypercube of the given dimension (2^dim
// processors, 0 <= dim <= 30).
func NewHypercube(dim int) (Hypercube, error) {
	if dim < 0 || dim > 30 {
		return Hypercube{}, fmt.Errorf("topology: hypercube dimension must be in [0, 30], have %d", dim)
	}
	return mesh.NewHypercube(dim), nil
}

// NewFatTree returns a binary fat-tree of the given height (2^height
// hosts, 0 <= height <= 24).
func NewFatTree(height int) (FatTree, error) {
	if height < 0 || height > 24 {
		return FatTree{}, fmt.Errorf("topology: fat-tree height must be in [0, 24], have %d", height)
	}
	return mesh.NewFatTree(height), nil
}

// NewGraph builds a general-graph topology from an undirected edge list
// over n nodes. The graph must be simple and connected; routes are
// deterministic BFS shortest paths.
func NewGraph(name string, n int, edges [][2]int) (*Graph, error) {
	return mesh.NewGraph(name, n, edges)
}

// NewRandomRegular builds a connected random d-regular graph over n nodes
// from the seed (n*d must be even).
func NewRandomRegular(n, d int, seed uint64) (*Graph, error) {
	return mesh.NewRandomRegular(n, d, seed)
}

// NewErdosRenyi builds a connected Erdős–Rényi graph over n nodes with the
// given average degree from the seed (components are bridged
// deterministically).
func NewErdosRenyi(n int, avgDegree float64, seed uint64) (*Graph, error) {
	return mesh.NewErdosRenyi(n, avgDegree, seed)
}

// NewDegradedMesh builds a rows×cols mesh with drop links removed at
// random from the seed, keeping the graph connected.
func NewDegradedMesh(rows, cols, drop int, seed uint64) (*Graph, error) {
	return mesh.NewDegradedMesh(rows, cols, drop, seed)
}

// Builder constructs a topology from the canonical ROWSxCOLS machine size.
// Builders for non-grid topologies derive their shape from the processor
// count rows*cols.
type Builder func(rows, cols int) (Topology, error)

// Spec is one registry entry: a named, documented topology builder.
type Spec struct {
	// Name is the registry key ("mesh", "torus", ...), as used by
	// -topology flags and configuration files.
	Name string
	// Summary is a one-line description for help texts.
	Summary string
	// Build constructs the topology for a machine size.
	Build Builder
}

var reg = registry.New[Spec]("topology")

// Register adds a topology to the registry. Registration happens at
// program initialization (from an init function, like image format or SQL
// driver registration), so programming errors — an empty name, a nil
// builder, a duplicate — panic rather than returning an error.
func Register(s Spec) {
	if s.Name == "" || s.Build == nil {
		panic("topology: Register needs a name and a builder")
	}
	reg.Register(s.Name, s)
}

// Get returns the registered topology spec for name. The error of an
// unknown name lists the registered alternatives.
func Get(name string) (Spec, error) { return reg.Get(name) }

// Build resolves name through the registry and builds the topology for the
// canonical ROWSxCOLS machine size.
func Build(name string, rows, cols int) (Topology, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	return s.Build(rows, cols)
}

// Names returns the registered topology names, sorted.
func Names() []string { return reg.Names() }

// pow2Dim returns log2(rows*cols) for the builders whose size is derived
// from the processor count.
func pow2Dim(kind string, rows, cols int) (int, error) {
	if rows <= 0 || cols <= 0 {
		return 0, fmt.Errorf("topology: %s size must be positive, have %dx%d", kind, rows, cols)
	}
	n := rows * cols
	if n&(n-1) != 0 {
		return 0, fmt.Errorf("topology: %s needs a power-of-two processor count, have %d", kind, n)
	}
	return bits.Len(uint(n)) - 1, nil
}

func init() {
	Register(Spec{
		Name:    "mesh",
		Summary: "2D mesh (the paper's Parsytec GCel platform)",
		Build: func(rows, cols int) (Topology, error) {
			m, err := NewMesh(rows, cols)
			if err != nil {
				return nil, err
			}
			return m, nil
		},
	})
	Register(Spec{
		Name:    "torus",
		Summary: "2D torus: the mesh with wrap-around links",
		Build: func(rows, cols int) (Topology, error) {
			t, err := NewTorus(rows, cols)
			if err != nil {
				return nil, err
			}
			return t, nil
		},
	})
	Register(Spec{
		Name:    "hypercube",
		Summary: "binary hypercube with e-cube routing (rows*cols must be a power of two)",
		Build: func(rows, cols int) (Topology, error) {
			dim, err := pow2Dim("hypercube", rows, cols)
			if err != nil {
				return nil, err
			}
			h, err := NewHypercube(dim)
			if err != nil {
				return nil, err
			}
			return h, nil
		},
	})
	// The graph:* entries are deterministic irregular interconnects: each
	// builder is a pure function of the machine size (the construction
	// seed is fixed and mixed with the processor count), so a named graph
	// topology denotes exactly one graph — runs, forks and registries all
	// agree on its routes.
	const graphSeed = 0x67726170685f3842 // "graph_8B"
	Register(Spec{
		Name:    "graph:regular",
		Summary: "random 4-regular graph over rows*cols nodes (fixed construction seed)",
		Build: func(rows, cols int) (Topology, error) {
			if rows <= 0 || cols <= 0 {
				return nil, fmt.Errorf("topology: graph size must be positive, have %dx%d", rows, cols)
			}
			n := rows * cols
			return mesh.NewRandomRegular(n, 4, graphSeed^uint64(n))
		},
	})
	Register(Spec{
		Name:    "graph:er",
		Summary: "Erdős–Rényi graph over rows*cols nodes, average degree 4, bridged connected (fixed construction seed)",
		Build: func(rows, cols int) (Topology, error) {
			if rows <= 0 || cols <= 0 {
				return nil, fmt.Errorf("topology: graph size must be positive, have %dx%d", rows, cols)
			}
			n := rows * cols
			return mesh.NewErdosRenyi(n, 4, graphSeed^uint64(n))
		},
	})
	Register(Spec{
		Name:    "graph:degraded",
		Summary: "rows*cols mesh with ~10% of its links removed, still connected (fixed construction seed)",
		Build: func(rows, cols int) (Topology, error) {
			if rows <= 0 || cols <= 0 {
				return nil, fmt.Errorf("topology: graph size must be positive, have %dx%d", rows, cols)
			}
			drop := (rows*(cols-1) + cols*(rows-1)) / 10
			return mesh.NewDegradedMesh(rows, cols, drop, graphSeed^uint64(rows*cols))
		},
	})
	Register(Spec{
		Name:    "fattree",
		Summary: "binary fat-tree with switch nodes and d-mod-k routing (rows*cols must be a power of two)",
		Build: func(rows, cols int) (Topology, error) {
			h, err := pow2Dim("fat-tree", rows, cols)
			if err != nil {
				return nil, err
			}
			ft, err := NewFatTree(h)
			if err != nil {
				return nil, err
			}
			return ft, nil
		},
	})
}
