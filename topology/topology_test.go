package topology_test

import (
	"reflect"
	"strings"
	"testing"

	"diva/topology"
)

// TestBuiltinRegistry: the four interconnects must be registered under
// their flag names and build the expected processor counts from the
// canonical ROWSxCOLS size.
func TestBuiltinRegistry(t *testing.T) {
	want := []string{"fattree", "graph:degraded", "graph:er", "graph:regular", "hypercube", "mesh", "torus"}
	if got := topology.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		s, err := topology.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if s.Summary == "" {
			t.Errorf("Get(%q).Summary is empty", name)
		}
		tp, err := topology.Build(name, 8, 8)
		if err != nil {
			t.Fatalf("Build(%q, 8, 8): %v", name, err)
		}
		if tp.N() != 64 {
			t.Errorf("Build(%q, 8, 8).N() = %d, want 64", name, tp.N())
		}
	}
	// Non-square grids: direct for mesh/torus, processor count for the
	// derived topologies.
	if tp, err := topology.Build("mesh", 2, 8); err != nil || tp.N() != 16 {
		t.Errorf("Build(mesh, 2, 8) = %v, %v", tp, err)
	}
	if tp, err := topology.Build("hypercube", 2, 8); err != nil || tp.N() != 16 {
		t.Errorf("Build(hypercube, 2, 8) = %v, %v", tp, err)
	}
}

// TestGraphRegistryInvariants: every graph:* registry entry builds a
// connected topology with shortest, deterministic routes, and building
// the same entry twice yields the identical link structure (the
// constructors are pure functions of the grid size).
func TestGraphRegistryInvariants(t *testing.T) {
	names := []string{}
	for _, name := range topology.Names() {
		if strings.HasPrefix(name, "graph:") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		t.Fatal("no graph:* entries registered")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			tp, err := topology.Build(name, 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			// Rebuild: identical link enumeration.
			tp2, err := topology.Build(name, 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			var links1, links2 [][3]int
			tp.ForEachLink(func(link, from, to int) { links1 = append(links1, [3]int{link, from, to}) })
			tp2.ForEachLink(func(link, from, to int) { links2 = append(links2, [3]int{link, from, to}) })
			if !reflect.DeepEqual(links1, links2) {
				t.Fatal("two builds of the same graph entry differ")
			}
			// Routes: deterministic, length == Dist, connected walk a->b.
			adj := make(map[int][]int)
			ends := make(map[int][2]int)
			for _, l := range links1 {
				adj[l[1]] = append(adj[l[1]], l[2])
				ends[l[0]] = [2]int{l[1], l[2]}
			}
			maxDist := 0
			for a := 0; a < tp.N(); a++ {
				for b := 0; b < tp.N(); b++ {
					route := tp.AppendRoute(nil, a, b)
					if len(route) != tp.Dist(a, b) {
						t.Fatalf("route %d->%d has %d links, Dist says %d",
							a, b, len(route), tp.Dist(a, b))
					}
					cur := a
					for _, l := range route {
						e, ok := ends[l]
						if !ok || e[0] != cur {
							t.Fatalf("route %d->%d broken at link %d", a, b, l)
						}
						cur = e[1]
					}
					if cur != b {
						t.Fatalf("route %d->%d ends at %d", a, b, cur)
					}
					if d := tp.Dist(a, b); d > maxDist {
						maxDist = d
					}
				}
			}
			if maxDist != tp.Diameter() {
				t.Errorf("max pair distance %d != Diameter() %d", maxDist, tp.Diameter())
			}
		})
	}
}

// TestBuildErrors: invalid sizes come back as errors naming the problem.
func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols int
		want       string
	}{
		{"mesh", 0, 4, "must be positive"},
		{"torus", 4, -1, "must be positive"},
		{"hypercube", 3, 3, "power-of-two"},
		{"fattree", 5, 5, "power-of-two"},
		{"ring", 4, 4, "unknown topology"},
	}
	for _, tc := range cases {
		_, err := topology.Build(tc.name, tc.rows, tc.cols)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Build(%q, %d, %d): err = %v, want mention of %q",
				tc.name, tc.rows, tc.cols, err, tc.want)
		}
	}
}

// TestConstructorValidation: the direct constructors validate their
// arguments instead of panicking like the internal ones.
func TestConstructorValidation(t *testing.T) {
	if _, err := topology.NewMesh(0, 1); err == nil {
		t.Error("NewMesh(0, 1) succeeded")
	}
	if _, err := topology.NewTorus(1, 0); err == nil {
		t.Error("NewTorus(1, 0) succeeded")
	}
	if _, err := topology.NewHypercube(-1); err == nil {
		t.Error("NewHypercube(-1) succeeded")
	}
	if _, err := topology.NewFatTree(25); err == nil {
		t.Error("NewFatTree(25) succeeded")
	}
	if hc, err := topology.NewHypercube(5); err != nil || hc.N() != 32 {
		t.Errorf("NewHypercube(5) = %v, %v", hc, err)
	}
}

// TestRegisterValidation: registration mistakes are programming errors and
// panic.
func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	builder := func(rows, cols int) (topology.Topology, error) {
		return topology.NewMesh(rows, cols)
	}
	mustPanic("empty name", func() { topology.Register(topology.Spec{Build: builder}) })
	mustPanic("nil builder", func() { topology.Register(topology.Spec{Name: "x"}) })
	mustPanic("duplicate", func() { topology.Register(topology.Spec{Name: "mesh", Build: builder}) })
}
