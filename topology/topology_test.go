package topology_test

import (
	"reflect"
	"strings"
	"testing"

	"diva/topology"
)

// TestBuiltinRegistry: the four interconnects must be registered under
// their flag names and build the expected processor counts from the
// canonical ROWSxCOLS size.
func TestBuiltinRegistry(t *testing.T) {
	want := []string{"fattree", "hypercube", "mesh", "torus"}
	if got := topology.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		s, err := topology.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if s.Summary == "" {
			t.Errorf("Get(%q).Summary is empty", name)
		}
		tp, err := topology.Build(name, 8, 8)
		if err != nil {
			t.Fatalf("Build(%q, 8, 8): %v", name, err)
		}
		if tp.N() != 64 {
			t.Errorf("Build(%q, 8, 8).N() = %d, want 64", name, tp.N())
		}
	}
	// Non-square grids: direct for mesh/torus, processor count for the
	// derived topologies.
	if tp, err := topology.Build("mesh", 2, 8); err != nil || tp.N() != 16 {
		t.Errorf("Build(mesh, 2, 8) = %v, %v", tp, err)
	}
	if tp, err := topology.Build("hypercube", 2, 8); err != nil || tp.N() != 16 {
		t.Errorf("Build(hypercube, 2, 8) = %v, %v", tp, err)
	}
}

// TestBuildErrors: invalid sizes come back as errors naming the problem.
func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols int
		want       string
	}{
		{"mesh", 0, 4, "must be positive"},
		{"torus", 4, -1, "must be positive"},
		{"hypercube", 3, 3, "power-of-two"},
		{"fattree", 5, 5, "power-of-two"},
		{"ring", 4, 4, "unknown topology"},
	}
	for _, tc := range cases {
		_, err := topology.Build(tc.name, tc.rows, tc.cols)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Build(%q, %d, %d): err = %v, want mention of %q",
				tc.name, tc.rows, tc.cols, err, tc.want)
		}
	}
}

// TestConstructorValidation: the direct constructors validate their
// arguments instead of panicking like the internal ones.
func TestConstructorValidation(t *testing.T) {
	if _, err := topology.NewMesh(0, 1); err == nil {
		t.Error("NewMesh(0, 1) succeeded")
	}
	if _, err := topology.NewTorus(1, 0); err == nil {
		t.Error("NewTorus(1, 0) succeeded")
	}
	if _, err := topology.NewHypercube(-1); err == nil {
		t.Error("NewHypercube(-1) succeeded")
	}
	if _, err := topology.NewFatTree(25); err == nil {
		t.Error("NewFatTree(25) succeeded")
	}
	if hc, err := topology.NewHypercube(5); err != nil || hc.N() != 32 {
		t.Errorf("NewHypercube(5) = %v, %v", hc, err)
	}
}

// TestRegisterValidation: registration mistakes are programming errors and
// panic.
func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	builder := func(rows, cols int) (topology.Topology, error) {
		return topology.NewMesh(rows, cols)
	}
	mustPanic("empty name", func() { topology.Register(topology.Spec{Build: builder}) })
	mustPanic("nil builder", func() { topology.Register(topology.Spec{Name: "x"}) })
	mustPanic("duplicate", func() { topology.Register(topology.Spec{Name: "mesh", Build: builder}) })
}
