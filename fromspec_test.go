// Tests for the Spec funnel: a spec-built run must be bit-identical to
// the same run built through functional options, every registered
// workload name must build, and the spec-side name tables must stay in
// lockstep with the library's.
package diva_test

import (
	"testing"

	"diva"
	"diva/spec"
	"diva/strategy"
	"diva/topology"
)

// TestFromSpecMatchesOptions pins that FromSpec and hand-built options
// describe the identical run (event-order fingerprint and elapsed time).
func TestFromSpecMatchesOptions(t *testing.T) {
	s := diva.Spec{
		Topology: "torus", Rows: 8, Cols: 8, Strategy: "at4",
		Seed:     1999,
		Workload: diva.WorkloadSpec{Name: "bitonic", Keys: 16, Check: true},
	}
	ms, ws, err := diva.FromSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := ws.Run(ms, nil)
	if err != nil {
		t.Fatal(err)
	}

	mo := diva.MustNew(
		diva.WithTopologyName("torus", 8, 8),
		diva.WithStrategyName("at4"),
		diva.WithSeed(1999),
		diva.WithShards(1),
	)
	wo := diva.Bitonic(diva.BitonicConfig{KeysPerProc: 16, CompareUS: 1.0, Check: true, Seed: 1999})
	resO, err := wo.Run(mo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ms.K.Fingerprint() != mo.K.Fingerprint() {
		t.Errorf("spec run fingerprint %#x != option run %#x", ms.K.Fingerprint(), mo.K.Fingerprint())
	}
	if resS.ElapsedUS != resO.ElapsedUS {
		t.Errorf("spec run elapsed %v != option run %v", resS.ElapsedUS, resO.ElapsedUS)
	}
	if !resS.Verified {
		t.Error("spec run not verified")
	}
}

// TestFromSpecEveryWorkload pins that every registered workload name
// builds and runs from a small spec.
func TestFromSpecEveryWorkload(t *testing.T) {
	for _, w := range spec.WorkloadNames() {
		w := w
		t.Run(w, func(t *testing.T) {
			s := diva.Spec{Rows: 4, Cols: 4, Seed: 1, Workload: diva.WorkloadSpec{
				Name: w, Block: 16, Keys: 8, Bodies: 64, Steps: 2, MeasureFrom: 1, Iters: 2, Halo: 16,
			}}
			if !spec.HandOptimized(w) {
				s.Strategy = "at4"
			}
			m, wl, err := diva.FromSpec(s)
			if err != nil {
				t.Fatal(err)
			}
			if wl.Name() != w {
				t.Fatalf("workload %q built %q", w, wl.Name())
			}
			if _, err := wl.Run(m, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFromSpecRejectsInvalid pins the typed validation error surface.
func TestFromSpecRejectsInvalid(t *testing.T) {
	_, _, err := diva.FromSpec(diva.Spec{Workload: diva.WorkloadSpec{Name: "matmul"}})
	if err == nil {
		t.Fatal("want a validation error (DSM workload without strategy)")
	}
	if _, ok := err.(*spec.ValidationError); !ok {
		t.Fatalf("want *spec.ValidationError, got %T: %v", err, err)
	}
}

// TestFromSpecIgnoresEnvShards pins that a serialized run description
// never reads $DIVA_SHARDS: shards 0 means sequential.
func TestFromSpecIgnoresEnvShards(t *testing.T) {
	t.Setenv("DIVA_SHARDS", "4")
	m, err := diva.MachineFromSpec(diva.Spec{Workload: diva.WorkloadSpec{Name: "stencil"}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 1 {
		t.Errorf("spec shards 0 resolved to %d shards; must ignore DIVA_SHARDS", m.Shards())
	}
}

// TestSpecNameTablesInLockstep pins the spec package's own name tables
// (it deliberately avoids importing the simulator) against the library.
func TestSpecNameTablesInLockstep(t *testing.T) {
	for _, tree := range []diva.Tree{diva.Ary2, diva.Ary4, diva.Ary16, diva.Ary2K4, diva.Ary4K8, diva.Ary4K16} {
		found := false
		for _, n := range spec.TreeNames() {
			if n == tree.Name() {
				found = true
			}
		}
		if !found {
			t.Errorf("tree %q missing from spec.TreeNames()", tree.Name())
		}
	}
	if got, want := len(spec.TreeNames()), 6; got != want {
		t.Errorf("spec.TreeNames() has %d entries, want %d", got, want)
	}
	// Every tree name must build through a spec.
	for _, n := range spec.TreeNames() {
		s := diva.Spec{Tree: n, Strategy: "at2", Workload: diva.WorkloadSpec{Name: "matmul"}}
		if err := s.ValidateMachine(); err != nil {
			t.Errorf("tree %q: %v", n, err)
		}
		if _, err := diva.MachineFromSpec(s); err != nil {
			t.Errorf("tree %q: %v", n, err)
		}
	}
}

// TestRegistryExports pins the diva-level registry listings against the
// underlying registries.
func TestRegistryExports(t *testing.T) {
	if got, want := len(diva.Strategies()), len(strategy.Names()); got != want {
		t.Errorf("Strategies() has %d entries, registry %d", got, want)
	}
	if got, want := len(diva.Topologies()), len(topology.Names()); got != want {
		t.Errorf("Topologies() has %d entries, registry %d", got, want)
	}
	if got, want := len(diva.Workloads()), len(spec.WorkloadNames()); got != want {
		t.Errorf("Workloads() has %d entries, spec %d", got, want)
	}
	for _, e := range append(diva.Strategies(), diva.Topologies()...) {
		if e.Name == "" || e.Summary == "" {
			t.Errorf("registry entry missing name or summary: %+v", e)
		}
	}
}
