// Command benchjson converts `go test -bench` output on stdin into a JSON
// document mapping benchmark name to ns/op, allocation counters and every
// reported simulated-result metric. `make bench` uses it to emit
// BENCH_<date>.json, so the perf trajectory of the simulator — and the
// simulated experiment outcomes riding along as b.ReportMetric values —
// stay machine-readable across PRs.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkFig -benchmem . | benchjson > BENCH_2026-07-26.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line, decoded.
type result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Iterations  int64              `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := make(map[string]result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix (e.g. "BenchmarkFoo-8") without
		// touching digits that belong to the benchmark name itself.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				r.Metrics[unit] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		out[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
