// Command benchjson converts `go test -bench` output on stdin into a JSON
// document mapping benchmark name to ns/op, allocation counters and every
// reported simulated-result metric. `make bench` uses it to emit
// BENCH_<date>.json, so the perf trajectory of the simulator — and the
// simulated experiment outcomes riding along as b.ReportMetric values —
// stay machine-readable across PRs.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkFig -benchmem . | benchjson > BENCH_2026-07-26.json
//	benchjson -check BENCH_2026-07-26.json -expect benchlist.txt -require BenchmarkShardScaling
//	benchjson -diff BENCH_old.json BENCH_new.json [-max-regress 50] [-max-alloc-regress 10]
//
// Check mode guards the pipeline against silent drift: it verifies the
// emitted file parses, that every benchmark named in -expect (one name per
// line, as printed by `go test -list`) is present, and that every entry
// recorded an iteration count and a positive ns/op. -require names
// benchmark prefixes (comma-separated) that must each match at least one
// entry — pointed at the committed baseline it forces a BENCH refresh when
// a new benchmark family lands, where -expect can only see what the
// current test binary lists.
//
// Diff mode compares two emitted documents benchmark by benchmark and
// fails when new is worse than old: an ns/op regression beyond
// -max-regress percent (generous by default — CI runs single iterations
// on shared machines, so wall-clock wobbles), an allocs/op regression
// beyond -max-alloc-regress percent plus a small absolute slack
// (allocation counts are near-deterministic, so the bound is tight and
// machine-independent), a benchmark that disappeared, or — with zero
// tolerance — ANY drift in a reported simulated metric (congestion,
// simulated time): those are deterministic, so any change means the
// simulation semantics changed, not the machine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line, decoded.
type result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Iterations  int64              `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	check := flag.String("check", "", "validate an emitted BENCH_<date>.json instead of converting stdin")
	expect := flag.String("expect", "", "check mode: file listing required benchmark names, one per line")
	require := flag.String("require", "", "check mode: comma-separated benchmark-name prefixes that must each match at least one entry")
	diff := flag.Bool("diff", false, "compare two BENCH json files: benchjson -diff old.json new.json")
	maxRegress := flag.Float64("max-regress", 50, "diff mode: max tolerated ns/op regression in percent")
	maxAllocRegress := flag.Float64("max-alloc-regress", 10, "diff mode: max tolerated allocs/op regression in percent (plus a fixed slack of 16 allocs)")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		if err := runDiff(flag.Arg(0), flag.Arg(1), *maxRegress, *maxAllocRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *check != "" {
		if err := runCheck(*check, *expect, *require); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	out := make(map[string]result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix (e.g. "BenchmarkFoo-8") without
		// touching digits that belong to the benchmark name itself.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				r.Metrics[unit] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		out[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// loadResults reads and parses an emitted BENCH json document.
func loadResults(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	got := make(map[string]result)
	if err := json.Unmarshal(data, &got); err != nil {
		return nil, fmt.Errorf("%s does not parse: %w", path, err)
	}
	if len(got) == 0 {
		return nil, fmt.Errorf("%s contains no benchmark entries", path)
	}
	return got, nil
}

// runDiff compares new against old: it fails on a missing benchmark, an
// ns/op regression beyond maxRegress percent, an allocs/op regression
// beyond maxAllocRegress percent (+16 allocs absolute slack, so tiny
// benchmarks with near-zero allocation counts don't trip on noise), or
// any simulated-metric drift (zero tolerance: the metrics are
// deterministic). New benchmarks and new metrics are reported but
// allowed — the suite is expected to grow.
func runDiff(oldPath, newPath string, maxRegress, maxAllocRegress float64) error {
	old, err := loadResults(oldPath)
	if err != nil {
		return err
	}
	cur, err := loadResults(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	var problems []string
	compared, added := 0, 0
	for name := range cur {
		if _, ok := old[name]; !ok {
			added++
		}
	}
	for _, name := range names {
		o := old[name]
		n, ok := cur[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: benchmark disappeared", name))
			continue
		}
		compared++
		if o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+maxRegress/100) {
			problems = append(problems, fmt.Sprintf("%s: ns/op regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
				name, 100*(n.NsPerOp/o.NsPerOp-1), o.NsPerOp, n.NsPerOp, maxRegress))
		}
		const allocSlack = 16
		if n.AllocsPerOp > o.AllocsPerOp*(1+maxAllocRegress/100)+allocSlack {
			problems = append(problems, fmt.Sprintf("%s: allocs/op regressed %.0f -> %.0f (tolerance %.0f%% + %d)",
				name, o.AllocsPerOp, n.AllocsPerOp, maxAllocRegress, allocSlack))
		}
		metrics := make([]string, 0, len(o.Metrics))
		for unit := range o.Metrics {
			metrics = append(metrics, unit)
		}
		sort.Strings(metrics)
		for _, unit := range metrics {
			want := o.Metrics[unit]
			got, ok := n.Metrics[unit]
			if !ok {
				problems = append(problems, fmt.Sprintf("%s: simulated metric %q disappeared", name, unit))
				continue
			}
			if got != want {
				problems = append(problems, fmt.Sprintf("%s: simulated metric %q drifted: %v -> %v (must be bit-identical)",
					name, unit, want, got))
			}
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchjson: DIFF:", p)
		}
		return fmt.Errorf("%d problem(s) comparing %s -> %s", len(problems), oldPath, newPath)
	}
	fmt.Printf("benchjson: %s -> %s ok (%d benchmarks compared, %d added, ns/op within %.0f%%, allocs/op within %.0f%%, simulated metrics identical)\n",
		oldPath, newPath, compared, added, maxRegress, maxAllocRegress)
	return nil
}

// runCheck validates an emitted JSON document: it must parse, contain
// every expected benchmark and at least one entry per required prefix,
// and every entry must have run.
func runCheck(path, expectPath, require string) error {
	got, err := loadResults(path)
	if err != nil {
		return err
	}
	var missing, broken []string
	for name, r := range got {
		if r.Iterations <= 0 || r.NsPerOp <= 0 {
			broken = append(broken, name)
		}
	}
	for _, prefix := range strings.Split(require, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix == "" {
			continue
		}
		found := false
		for name := range got {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, prefix+"*")
		}
	}
	if expectPath != "" {
		want, err := os.ReadFile(expectPath)
		if err != nil {
			return err
		}
		expected := 0
		for _, line := range strings.Split(string(want), "\n") {
			name := strings.TrimSpace(line)
			if !strings.HasPrefix(name, "Benchmark") {
				continue
			}
			expected++
			if _, ok := got[name]; !ok {
				missing = append(missing, name)
			}
		}
		if expected == 0 {
			return fmt.Errorf("%s lists no benchmarks — expectation file drifted", expectPath)
		}
	}
	if len(missing) > 0 || len(broken) > 0 {
		return fmt.Errorf("%s: missing entries %v, entries without results %v", path, missing, broken)
	}
	fmt.Printf("benchjson: %s ok (%d entries)\n", path, len(got))
	return nil
}
