// Command experiments regenerates the figures of the paper's evaluation.
//
// Usage:
//
//	experiments [-fig N] [-quick] [-seed S] [-workers W]
//
// With no -fig flag every figure is produced. -quick shrinks the meshes
// and inputs so the whole suite finishes in well under a minute; without
// it the original problem sizes (16×16 and 32×32 meshes, up to 60,000
// bodies) are simulated, which takes tens of minutes. -workers W runs up
// to W figures concurrently (output stays in figure order and is
// byte-identical to a sequential run; each figure's simulation is seeded
// independently of the others).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"diva/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: "+strings.Join(experiments.Figures(), ", ")+", or all")
	quick := flag.Bool("quick", false, "scaled-down inputs (seconds instead of tens of minutes)")
	seed := flag.Uint64("seed", 1999, "random seed (1999: the year of the paper)")
	workers := flag.Int("workers", 1, "number of figures to run concurrently (0: one per CPU)")
	shards := flag.Int("shards", 0, "event-kernel shards per machine (0 = $DIVA_SHARDS or 1; figures are identical)")
	recovery := flag.String("recovery", "oracle", "fault-tolerance mode of the faults sweep: oracle or reactive (the recovery figure always compares both)")
	flag.Parse()

	r := experiments.New(os.Stdout, *quick, *seed)
	r.Shards = *shards
	r.Recovery = *recovery
	if *workers == 0 {
		*workers = runtime.NumCPU()
	}
	r.Workers = *workers
	var err error
	if *fig == "all" {
		err = r.RunAll()
	} else {
		err = r.Run(*fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
