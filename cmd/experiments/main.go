// Command experiments regenerates the figures of the paper's evaluation.
//
// Usage:
//
//	experiments [-fig N] [-quick] [-seed S]
//
// With no -fig flag every figure is produced. -quick shrinks the meshes
// and inputs so the whole suite finishes in well under a minute; without
// it the original problem sizes (16×16 and 32×32 meshes, up to 60,000
// bodies) are simulated, which takes tens of minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"diva/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: "+strings.Join(experiments.Figures, ", ")+", or all")
	quick := flag.Bool("quick", false, "scaled-down inputs (seconds instead of tens of minutes)")
	seed := flag.Uint64("seed", 1999, "random seed (1999: the year of the paper)")
	flag.Parse()

	r := experiments.New(os.Stdout, *quick, *seed)
	var err error
	if *fig == "all" {
		err = r.RunAll()
	} else {
		err = r.Run(*fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
