// Command divasim runs a single application/strategy configuration on a
// simulated machine and reports congestion and execution time — the
// exploration tool behind the experiment harness.
//
// Examples:
//
//	divasim -app matmul -strategy at4 -mesh 16x16 -block 1024
//	divasim -app bitonic -strategy at2k4 -mesh 8x8 -keys 4096
//	divasim -app barneshut -strategy fixedhome -mesh 8x8 -bodies 4000
//	divasim -app matmul -strategy handopt -mesh 32x32 -block 4096
//	divasim -app barneshut -strategy at4 -topology torus -mesh 8x8
//	divasim -app barneshut -strategy at2 -topology hypercube -mesh 8x8
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"strconv"
	"strings"

	"diva/internal/apps/barneshut"
	"diva/internal/apps/bitonic"
	"diva/internal/apps/matmul"
	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
	"diva/internal/mesh"
	"diva/internal/metrics"
)

var strategies = map[string]struct {
	fact core.Factory
	spec decomp.Spec
}{
	"fixedhome": {fixedhome.Factory(), decomp.Ary4},
	"at2":       {accesstree.Factory(), decomp.Ary2},
	"at4":       {accesstree.Factory(), decomp.Ary4},
	"at16":      {accesstree.Factory(), decomp.Ary16},
	"at2k4":     {accesstree.Factory(), decomp.Ary2K4},
	"at4k8":     {accesstree.Factory(), decomp.Ary4K8},
	"at4k16":    {accesstree.Factory(), decomp.Ary4K16},
	"atrandom":  {accesstree.FactoryOpts(accesstree.Options{RandomEmbedding: true}), decomp.Ary4},
	"handopt":   {nil, decomp.Ary2},
}

func parseMesh(s string) (int, int, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("mesh %q: want ROWSxCOLS", s)
	}
	r, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	c, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, err
	}
	if r <= 0 || c <= 0 {
		return 0, 0, fmt.Errorf("mesh %q: dimensions must be positive", s)
	}
	return r, c, nil
}

// buildTopology maps the -topology flag to a mesh.Topology over the -mesh
// dimensions. The hypercube and fat-tree take their size from the node
// count, which must be a power of two.
func buildTopology(kind string, rows, cols int) (mesh.Topology, error) {
	switch kind {
	case "mesh":
		return mesh.New(rows, cols), nil
	case "torus":
		return mesh.NewTorus(rows, cols), nil
	case "hypercube", "fattree":
		n := rows * cols
		if n&(n-1) != 0 {
			return nil, fmt.Errorf("%s needs a power-of-two node count, have %d", kind, n)
		}
		dim := bits.Len(uint(n)) - 1
		if kind == "hypercube" {
			return mesh.NewHypercube(dim), nil
		}
		return mesh.NewFatTree(dim), nil
	}
	return nil, fmt.Errorf("unknown topology %q (want mesh, torus, hypercube, fattree)", kind)
}

func main() {
	app := flag.String("app", "matmul", "application: matmul, bitonic, barneshut")
	strat := flag.String("strategy", "at4", "data management strategy: fixedhome, at2, at4, at16, at2k4, at4k8, at4k16, atrandom, handopt")
	meshFlag := flag.String("mesh", "8x8", "mesh dimensions ROWSxCOLS")
	topoFlag := flag.String("topology", "mesh", "network topology: mesh, torus, hypercube, fattree (size from -mesh)")
	block := flag.Int("block", 1024, "matmul: block size in integers (perfect square)")
	keys := flag.Int("keys", 4096, "bitonic: keys per processor")
	bodies := flag.Int("bodies", 4000, "barneshut: number of bodies")
	steps := flag.Int("steps", 7, "barneshut: time steps (last steps after -measure are measured)")
	measure := flag.Int("measure", 2, "barneshut: first measured step")
	compute := flag.Bool("compute", false, "charge local computation costs (matmul/bitonic)")
	seed := flag.Uint64("seed", 1999, "random seed")
	capacity := flag.Int("capacity", 0, "cache capacity per node in bytes (0 = unbounded)")
	verbose := flag.Bool("v", false, "print per-message-kind statistics")
	heatmap := flag.Bool("heatmap", false, "print a per-link load heatmap (deciles of the busiest link)")
	flag.Parse()

	rows, cols, err := parseMesh(*meshFlag)
	if err != nil {
		fail(err)
	}
	sc, ok := strategies[*strat]
	if !ok {
		fail(fmt.Errorf("unknown strategy %q", *strat))
	}
	if sc.fact == nil && *app == "barneshut" {
		fail(fmt.Errorf("barneshut has no hand-optimized strategy (see §3.3 of the paper)"))
	}
	topo, err := buildTopology(*topoFlag, rows, cols)
	if err != nil {
		fail(err)
	}

	m := core.NewMachine(core.Config{
		Topology: topo, Seed: *seed, Tree: sc.spec,
		Strategy: sc.fact, CacheCapacity: *capacity,
	})

	var elapsed float64
	var phases *metrics.Collector
	switch *app {
	case "matmul":
		cfg := matmul.Config{BlockInts: *block, WithCompute: *compute, OpUS: 3.45, Seed: *seed}
		var res matmul.Result
		if sc.fact == nil {
			res, err = matmul.RunHandOpt(m, cfg)
		} else {
			res, err = matmul.RunDSM(m, cfg)
		}
		elapsed = res.ElapsedUS
	case "bitonic":
		cfg := bitonic.Config{KeysPerProc: *keys, WithCompute: *compute, CompareUS: 1.0, Seed: *seed}
		var res bitonic.Result
		if sc.fact == nil {
			res, err = bitonic.RunHandOpt(m, cfg)
		} else {
			res, err = bitonic.RunDSM(m, cfg)
		}
		elapsed = res.ElapsedUS
	case "barneshut":
		phases = metrics.New(m.Net)
		var res barneshut.Result
		res, err = barneshut.Run(m, barneshut.Config{
			N: *bodies, Steps: *steps, MeasureFrom: *measure,
			Seed: *seed, WithCompute: true,
		}, phases)
		elapsed = res.ElapsedUS
	default:
		err = fmt.Errorf("unknown application %q", *app)
	}
	if err != nil {
		fail(err)
	}

	name := "hand-optimized"
	if sc.fact != nil {
		name = m.Strat.Name()
	}
	fmt.Printf("application:  %s on %s\n", *app, m.Topo)
	fmt.Printf("strategy:     %s\n", name)
	fmt.Printf("elapsed:      %.1f ms (simulated)\n", elapsed/1000)
	c := m.Net.Congestion(nil)
	fmt.Printf("congestion:   %d messages / %d bytes on the busiest link\n", c.MaxMsgs, c.MaxBytes)
	fmt.Printf("total load:   %d messages / %d bytes\n", c.TotalMsgs, c.TotalBytes)
	if phases != nil && phases.Enabled() {
		fmt.Printf("\nmeasured steps (from step %d):\n", *measure)
		tot := phases.Total()
		fmt.Printf("  total: time %.1f ms, congestion %d msgs\n", tot.TimeUS/1000, tot.Cong.MaxMsgs)
		for _, ph := range phases.PhaseNames() {
			res, _ := phases.Phase(ph)
			fmt.Printf("  %-10s time %10.1f ms, congestion %8d msgs, compute %8.1f ms\n",
				ph, res.TimeUS/1000, res.Cong.MaxMsgs, res.MaxComputeUS/1000)
		}
	}
	ev := uint64(0)
	for n := 0; n < m.P(); n++ {
		ev += m.Cache(n).Evictions()
	}
	if ev > 0 {
		fmt.Printf("replacements: %d copies evicted (capacity %d bytes/node)\n", ev, *capacity)
	}
	if *verbose {
		msgs, bytes := m.Net.SendStats()
		fmt.Println("\nmessages by kind:")
		for k := 0; k < 256; k++ {
			if msgs[k] > 0 {
				fmt.Printf("  kind %3d: %8d msgs, %12d bytes\n", k, msgs[k], bytes[k])
			}
		}
	}
	if *heatmap {
		mm, isMesh := m.MeshTopo()
		if !isMesh {
			fail(fmt.Errorf("-heatmap is mesh-specific, topology is %s", m.Topo))
		}
		fmt.Println("\nhorizontal link load (deciles of the busiest link):")
		fmt.Print(metrics.HeatmapMsgs(mm, m.Net.Loads(), nil))
		fmt.Println("\nbusiest links:")
		for _, l := range metrics.TopLinks(mm, m.Net.Loads(), 8) {
			fmt.Println(" ", l)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "divasim:", err)
	os.Exit(1)
}
