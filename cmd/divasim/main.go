// Command divasim runs a single application/strategy configuration on a
// simulated machine and reports congestion and execution time — the
// exploration tool behind the experiment harness. It is built entirely on
// the public diva API: the -strategy and -topology flags resolve through
// the diva/strategy and diva/topology registries, and the applications run
// through the diva.Workload interface.
//
// Examples:
//
//	divasim -app matmul -strategy at4 -mesh 16x16 -block 1024
//	divasim -app bitonic -strategy at2k4 -mesh 8x8 -keys 4096
//	divasim -app barneshut -strategy fixedhome -mesh 8x8 -bodies 4000
//	divasim -app matmul -strategy handopt -mesh 32x32 -block 4096
//	divasim -app barneshut -strategy at4 -topology torus -mesh 8x8
//	divasim -app barneshut -strategy at2 -topology hypercube -mesh 8x8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"diva"
	"diva/strategy"
	"diva/topology"
)

func parseMesh(s string) (int, int, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("mesh %q: want ROWSxCOLS", s)
	}
	r, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	c, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, err
	}
	if r <= 0 || c <= 0 {
		return 0, 0, fmt.Errorf("mesh %q: dimensions must be positive", s)
	}
	return r, c, nil
}

func main() {
	app := flag.String("app", "matmul", "application: matmul, bitonic, barneshut")
	strat := flag.String("strategy", "at4", "data management strategy: "+strings.Join(strategy.Names(), ", ")+", or handopt")
	meshFlag := flag.String("mesh", "8x8", "mesh dimensions ROWSxCOLS")
	topoFlag := flag.String("topology", "mesh", "network topology: "+strings.Join(topology.Names(), ", ")+" (size from -mesh)")
	block := flag.Int("block", 1024, "matmul: block size in integers (perfect square)")
	keys := flag.Int("keys", 4096, "bitonic: keys per processor")
	bodies := flag.Int("bodies", 4000, "barneshut: number of bodies")
	steps := flag.Int("steps", 7, "barneshut: time steps (last steps after -measure are measured)")
	measure := flag.Int("measure", 2, "barneshut: first measured step")
	compute := flag.Bool("compute", false, "charge local computation costs (matmul/bitonic)")
	seed := flag.Uint64("seed", 1999, "random seed")
	capacity := flag.Int("capacity", 0, "cache capacity per node in bytes (0 = unbounded)")
	shards := flag.Int("shards", 0, "event-kernel shards for parallel execution (0 = $DIVA_SHARDS or 1; results are identical)")
	verbose := flag.Bool("v", false, "print per-message-kind statistics")
	heatmap := flag.Bool("heatmap", false, "print a per-link load heatmap (deciles of the busiest link)")
	flag.Parse()

	rows, cols, err := parseMesh(*meshFlag)
	if err != nil {
		fail(err)
	}

	// "handopt" selects the hand-optimized message passing program of the
	// application instead of a data management strategy; every other name
	// resolves through the strategy registry.
	handopt := *strat == "handopt"
	opts := []diva.Option{
		diva.WithTopologyName(*topoFlag, rows, cols),
		diva.WithSeed(*seed),
		diva.WithCacheCapacity(*capacity),
		diva.WithShards(*shards),
	}
	if handopt {
		opts = append(opts, diva.WithTree(diva.Ary2))
	} else {
		opts = append(opts, diva.WithStrategyName(*strat))
	}
	m, err := diva.New(opts...)
	if err != nil {
		fail(err)
	}

	var w diva.Workload
	switch *app {
	case "matmul":
		cfg := diva.MatmulConfig{BlockInts: *block, WithCompute: *compute, OpUS: 3.45, Seed: *seed}
		if handopt {
			w = diva.MatmulHandOpt(cfg)
		} else {
			w = diva.Matmul(cfg)
		}
	case "bitonic":
		cfg := diva.BitonicConfig{KeysPerProc: *keys, WithCompute: *compute, CompareUS: 1.0, Seed: *seed}
		if handopt {
			w = diva.BitonicHandOpt(cfg)
		} else {
			w = diva.Bitonic(cfg)
		}
	case "barneshut":
		if handopt {
			fail(fmt.Errorf("barneshut has no hand-optimized strategy (see §3.3 of the paper)"))
		}
		w = diva.BarnesHut(diva.BarnesHutConfig{
			N: *bodies, Steps: *steps, MeasureFrom: *measure,
			Seed: *seed, WithCompute: true,
		})
	default:
		fail(fmt.Errorf("unknown application %q", *app))
	}

	col := diva.NewCollector(m)
	res, err := w.Run(m, col)
	if err != nil {
		fail(err)
	}

	name := "hand-optimized"
	if m.Strat != nil {
		name = m.Strat.Name()
	}
	fmt.Printf("application:  %s on %s\n", *app, m.Topo)
	fmt.Printf("strategy:     %s\n", name)
	fmt.Printf("elapsed:      %.1f ms (simulated)\n", res.ElapsedUS/1000)
	c := m.Net.Congestion(nil)
	fmt.Printf("congestion:   %d messages / %d bytes on the busiest link\n", c.MaxMsgs, c.MaxBytes)
	fmt.Printf("total load:   %d messages / %d bytes\n", c.TotalMsgs, c.TotalBytes)
	if col.Enabled() {
		fmt.Printf("\nmeasured steps (from step %d):\n", *measure)
		tot := col.Total()
		fmt.Printf("  total: time %.1f ms, congestion %d msgs\n", tot.TimeUS/1000, tot.Cong.MaxMsgs)
		for _, ph := range col.PhaseNames() {
			r, _ := col.Phase(ph)
			fmt.Printf("  %-10s time %10.1f ms, congestion %8d msgs, compute %8.1f ms\n",
				ph, r.TimeUS/1000, r.Cong.MaxMsgs, r.MaxComputeUS/1000)
		}
	}
	if ev := diva.TotalEvictions(m); ev > 0 {
		fmt.Printf("replacements: %d copies evicted (capacity %d bytes/node)\n", ev, *capacity)
	}
	if *verbose {
		msgs, bytes := m.Net.SendStats()
		fmt.Println("\nmessages by kind:")
		for k := 0; k < 256; k++ {
			if msgs[k] > 0 {
				fmt.Printf("  kind %3d: %8d msgs, %12d bytes\n", k, msgs[k], bytes[k])
			}
		}
	}
	if *heatmap {
		hm, isMesh := diva.LinkHeatmap(m)
		if !isMesh {
			fail(fmt.Errorf("-heatmap is mesh-specific, topology is %s", m.Topo))
		}
		fmt.Println("\nhorizontal link load (deciles of the busiest link):")
		fmt.Print(hm)
		fmt.Println("\nbusiest links:")
		top, _ := diva.BusiestLinks(m, 8)
		for _, l := range top {
			fmt.Println(" ", l)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "divasim:", err)
	os.Exit(1)
}
