// Command divasim runs a single application/strategy configuration on a
// simulated machine and reports congestion and execution time — the
// exploration tool behind the experiment harness. It is built entirely on
// the public diva API: every invocation is turned into a diva.Spec (the
// serializable run description of diva/spec) and handed to diva.FromSpec,
// so a command line, a -spec JSON document and a request to the serve
// mode all describe the identical run.
//
// Examples:
//
//	divasim -app matmul -strategy at4 -mesh 16x16 -block 1024
//	divasim -app bitonic -strategy at2k4 -mesh 8x8 -keys 4096
//	divasim -app barneshut -strategy fixedhome -mesh 8x8 -bodies 4000
//	divasim -app matmul -strategy handopt -mesh 32x32 -block 4096
//	divasim -app barneshut -strategy at4 -topology torus -mesh 8x8
//	divasim -spec run.json
//	divasim -list
//	divasim serve -addr :8080 -workers 4
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"diva"
	"diva/serve"
	"diva/spec"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	runMain(os.Args[1:])
}

// serveMain is the HTTP service mode: divasim serve [flags]. The server
// is hardened for operation: header/idle timeouts against slow clients,
// per-run deadlines, and a SIGTERM/SIGINT graceful drain — admission
// closes (503 + Retry-After) while in-flight runs get -drain-timeout to
// finish, then the listener shuts down.
func serveMain(args []string) {
	fs := flag.NewFlagSet("divasim serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 4, "concurrent simulation limit")
	queue := fs.Int("queue", 0, "wait-queue length beyond the workers (0 = 2x workers); excess requests get 429")
	cache := fs.Int("cache", 8, "machine snapshots kept warm (distinct machine descriptions)")
	snapshots := fs.String("snapshots", "", "directory for the on-disk snapshot store (enables /v1/snapshots and /v1/run?snapshot=...)")
	runTimeout := fs.Duration("run-timeout", 0, "server-side cap on each run's wall-clock time (0 = only per-request timeout_ms)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight runs on SIGTERM before they are canceled")
	fs.Parse(args)

	srv, err := serve.New(serve.Options{
		Workers: *workers, Queue: *queue, SnapshotCache: *cache,
		SnapshotDir: *snapshots, RunTimeout: *runTimeout,
	})
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slowloris guards: a client must finish its headers promptly and
		// cannot hold an idle connection forever.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	fmt.Printf("divasim: serving /v1/run, /v1/snapshots, /v1/registries, /v1/healthz on %s (%d workers)\n", *addr, *workers)

	select {
	case err := <-done:
		fail(err)
	case <-ctx.Done():
	}
	// Drain first, with the listener still up: rejected requests see 503 +
	// Retry-After, not connection refused, so load balancers fail over
	// cleanly. Only then shut the listener down.
	fmt.Fprintln(os.Stderr, "divasim: signal received, draining")
	srv.Drain(*drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "divasim: drained, bye")
}

// runMain is the single-run mode: flags (or a -spec document) build one
// diva.Spec and run it.
func runMain(args []string) {
	fs := flag.NewFlagSet("divasim", flag.ExitOnError)
	app := fs.String("app", "matmul", "application: matmul, bitonic, barneshut, stencil")
	strat := fs.String("strategy", "at4", "data management strategy (see -list), or handopt")
	meshFlag := fs.String("mesh", "8x8", "mesh dimensions ROWSxCOLS")
	topoFlag := fs.String("topology", "mesh", "network topology (see -list; size from -mesh)")
	tree := fs.String("tree", "", "decomposition tree override: "+strings.Join(spec.TreeNames(), ", "))
	block := fs.Int("block", 1024, "matmul: block size in integers (perfect square)")
	keys := fs.Int("keys", 4096, "bitonic: keys per processor")
	bodies := fs.Int("bodies", 4000, "barneshut: number of bodies")
	steps := fs.Int("steps", 7, "barneshut: time steps (last steps after -measure are measured)")
	measure := fs.Int("measure", 2, "barneshut: first measured step")
	iters := fs.Int("iters", 4, "stencil: iterations")
	halo := fs.Int("halo", 64, "stencil: halo size in integers")
	compute := fs.Bool("compute", false, "charge local computation costs (matmul/bitonic/stencil)")
	check := fs.Bool("check", false, "verify the output against a sequential reference (matmul/bitonic/stencil)")
	seed := fs.Uint64("seed", 1999, "random seed")
	recovery := fs.String("recovery", "oracle", "fault-tolerance mode: "+strings.Join(spec.RecoveryModes(), ", "))
	ackTimeout := fs.Float64("ack-timeout", 0, "reactive: initial retransmission timeout in simulated us (0 = default 2000)")
	retries := fs.Int("retries", 0, "reactive: retransmissions before the strategy recovers (0 = default 5)")
	backoff := fs.Float64("backoff", 0, "reactive: exponential backoff multiplier (0 = default 2)")
	capacity := fs.Int("capacity", 0, "cache capacity per node in bytes (0 = unbounded)")
	shards := fs.Int("shards", 0, "event-kernel shards for parallel execution (0 = $DIVA_SHARDS or 1; results are identical)")
	specFile := fs.String("spec", "", "run the spec JSON document from this file instead of the flags")
	list := fs.Bool("list", false, "list the registered strategies, topologies and workloads, then exit")
	verbose := fs.Bool("v", false, "print per-message-kind statistics")
	heatmap := fs.Bool("heatmap", false, "print a per-link load heatmap (deciles of the busiest link)")
	fs.Parse(args)

	if *list {
		printRegistries()
		return
	}

	var s diva.Spec
	if *specFile != "" {
		raw, err := os.ReadFile(*specFile)
		if err != nil {
			fail(err)
		}
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			fail(fmt.Errorf("%s: %w", *specFile, err))
		}
	} else {
		rows, cols, err := parseMesh(*meshFlag)
		if err != nil {
			fail(err)
		}
		// "handopt" selects the hand-optimized message passing variant of
		// the application instead of a data management strategy.
		workload := *app
		strategy := *strat
		if strategy == "handopt" || *app == "stencil" {
			strategy = ""
			if *app == "matmul" || *app == "bitonic" {
				workload = *app + "-handopt"
			}
		}
		// The flag's 0 means $DIVA_SHARDS, preserved here at the CLI
		// boundary: a serialized Spec itself never reads the environment.
		nshards := *shards
		if nshards == 0 {
			if v, err := strconv.Atoi(os.Getenv("DIVA_SHARDS")); err == nil && v > 0 {
				nshards = v
			}
		}
		s = diva.Spec{
			Topology:      *topoFlag,
			Rows:          rows,
			Cols:          cols,
			Strategy:      strategy,
			Tree:          *tree,
			Seed:          *seed,
			Shards:        nshards,
			CacheCapacity: *capacity,
			Recovery:      *recovery,
			AckTimeoutUS:  *ackTimeout,
			MaxRetries:    *retries,
			Backoff:       *backoff,
			Workload: diva.WorkloadSpec{
				Name:        workload,
				Block:       *block,
				Keys:        *keys,
				Bodies:      *bodies,
				Steps:       *steps,
				MeasureFrom: *measure,
				Iters:       *iters,
				Halo:        *halo,
				Compute:     *compute,
				Check:       *check,
			},
		}
	}

	m, w, err := diva.FromSpec(s)
	if err != nil {
		fail(err)
	}
	// The spec's operational deadline applies on the command line too: the
	// run is canceled at a kernel checkpoint when it expires.
	if ms := s.Normalized().TimeoutMS; ms > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(ms)*time.Millisecond)
		defer cancel()
		w = diva.WorkloadContext(ctx, w)
	}
	col := diva.NewCollector(m)
	res, err := w.Run(m, col)
	if err != nil {
		fail(err)
	}

	name := "hand-optimized"
	if m.Strat != nil {
		name = m.Strat.Name()
	}
	fmt.Printf("application:  %s on %s\n", w.Name(), m.Topo)
	fmt.Printf("strategy:     %s\n", name)
	fmt.Printf("elapsed:      %.1f ms (simulated)\n", res.ElapsedUS/1000)
	fmt.Printf("fingerprint:  0x%016x (%d events)\n", m.K.Fingerprint(), m.K.Stat.Events)
	c := m.Net.Congestion(nil)
	fmt.Printf("congestion:   %d messages / %d bytes on the busiest link\n", c.MaxMsgs, c.MaxBytes)
	fmt.Printf("total load:   %d messages / %d bytes\n", c.TotalMsgs, c.TotalBytes)
	if sched := m.Net.FaultSchedule(); len(sched) > 0 {
		st := m.Net.FaultStats()
		fmt.Printf("faults:       %d events; availability %.0f%%, stretch %.2f, %d msgs re-routed, %d retry bytes\n",
			len(sched), 100*st.Availability(), st.Stretch(), st.Rerouted, st.RetryBytes)
	}
	if m.Net.Reactive() {
		st := m.Net.FaultStats()
		meanDetect := 0.0
		if st.Detected > 0 {
			meanDetect = st.DetectUS / float64(st.Detected)
		}
		fmt.Printf("recovery:     reactive; %d dropped, %d retransmits, %d acks, %d detected (mean %.0f us), %d failovers, %d reissues\n",
			st.Dropped, st.Retransmits, st.AckMsgs, st.Detected, meanDetect, st.Failovers, st.Reissues)
	}
	if res.Verified {
		fmt.Printf("verified:     output matches the sequential reference\n")
	}
	if col.Enabled() {
		fmt.Printf("\nmeasured steps (from step %d):\n", s.Normalized().Workload.MeasureFrom)
		tot := col.Total()
		fmt.Printf("  total: time %.1f ms, congestion %d msgs\n", tot.TimeUS/1000, tot.Cong.MaxMsgs)
		for _, ph := range col.PhaseNames() {
			r, _ := col.Phase(ph)
			fmt.Printf("  %-10s time %10.1f ms, congestion %8d msgs, compute %8.1f ms\n",
				ph, r.TimeUS/1000, r.Cong.MaxMsgs, r.MaxComputeUS/1000)
		}
	}
	if ev := diva.TotalEvictions(m); ev > 0 {
		fmt.Printf("replacements: %d copies evicted (capacity %d bytes/node)\n", ev, s.CacheCapacity)
	}
	if *verbose {
		msgs, bytes := m.Net.SendStats()
		fmt.Println("\nmessages by kind:")
		for k := 0; k < 256; k++ {
			if msgs[k] > 0 {
				fmt.Printf("  kind %3d: %8d msgs, %12d bytes\n", k, msgs[k], bytes[k])
			}
		}
	}
	if *heatmap {
		hm, isMesh := diva.LinkHeatmap(m)
		if !isMesh {
			fail(fmt.Errorf("-heatmap is mesh-specific, topology is %s", m.Topo))
		}
		fmt.Println("\nhorizontal link load (deciles of the busiest link):")
		fmt.Print(hm)
		fmt.Println("\nbusiest links:")
		top, _ := diva.BusiestLinks(m, 8)
		for _, l := range top {
			fmt.Println(" ", l)
		}
	}
}

// printRegistries renders the -list output from the public registries.
func printRegistries() {
	fmt.Println("strategies:")
	for _, e := range diva.Strategies() {
		fmt.Printf("  %-10s %s\n", e.Name, e.Summary)
	}
	fmt.Println("  handopt    hand-optimized message passing (no data management strategy)")
	fmt.Println("\ntopologies:")
	for _, e := range diva.Topologies() {
		fmt.Printf("  %-10s %s\n", e.Name, e.Summary)
	}
	fmt.Println("\nworkloads:")
	for _, e := range diva.Workloads() {
		fmt.Printf("  %-16s %s\n", e.Name, e.Summary)
	}
	fmt.Println("\ntrees:")
	fmt.Printf("  %s\n", strings.Join(spec.TreeNames(), ", "))
	fmt.Println("\nfault schedule (spec fields):")
	for _, e := range spec.FaultFields() {
		fmt.Printf("  %-20s %s\n", e.Name, e.Summary)
	}
	fmt.Println("\nrecovery (spec fields):")
	for _, e := range spec.RecoveryFields() {
		fmt.Printf("  %-20s %s\n", e.Name, e.Summary)
	}
}

func parseMesh(s string) (int, int, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("mesh %q: want ROWSxCOLS", s)
	}
	r, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	c, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, err
	}
	if r <= 0 || c <= 0 {
		return 0, 0, fmt.Errorf("mesh %q: dimensions must be positive", s)
	}
	return r, c, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "divasim:", err)
	os.Exit(1)
}
