// A/B tests for machine snapshot/fork: forking a warmed-up machine and
// running a query on the fork must be bit-identical — the same
// executed-event-order fingerprint, simulated time, congestion, message
// counts and evictions — to running the query directly on the source
// machine. The matrix covers topology × strategy cells, the hand-optimized
// path under kernel sharding, bounded caches, and the reseeded-fork
// divergence contract.
package diva_test

import (
	"fmt"
	"testing"

	"diva"
)

// forkTraj is one run's observable trajectory after the query workload.
type forkTraj struct {
	fingerprint uint64
	events      uint64
	elapsedUS   float64
	congMax     uint64
	congTotal   uint64
	sendMsgs    uint64
	sendBytes   uint64
	evictions   uint64
	verified    bool
}

// capture collects the trajectory of m after a workload returned res.
func capture(t *testing.T, m *diva.Machine, res diva.Result) forkTraj {
	t.Helper()
	c := m.Net.Congestion(nil)
	msgs, bytes := m.Net.SendStats()
	var sm, sb uint64
	for k := range msgs {
		sm += msgs[k]
		sb += bytes[k]
	}
	return forkTraj{
		fingerprint: m.K.Fingerprint(),
		events:      m.K.Stat.Events,
		elapsedUS:   res.ElapsedUS,
		congMax:     c.MaxMsgs,
		congTotal:   c.TotalMsgs,
		sendMsgs:    sm,
		sendBytes:   sb,
		evictions:   diva.TotalEvictions(m),
		verified:    res.Verified,
	}
}

// mustRun runs w on m and fails the test on error.
func mustRun(t *testing.T, m *diva.Machine, w diva.Workload) diva.Result {
	t.Helper()
	res, err := w.Run(m, nil)
	if err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	return res
}

// checkForkAB pins the fork contract for one (machine options, warm
// workload, query workload) cell:
//
//   - baseline: one machine runs warm then query back-to-back;
//   - fork: a second machine runs warm, snapshots, and two concurrent
//     forks run the query — both must match the baseline exactly;
//   - the snapshot is non-destructive: the source machine continues with
//     the query and must match the baseline too.
func checkForkAB(t *testing.T, warm, query diva.Workload, opts ...diva.Option) {
	t.Helper()
	opts = append(opts, diva.WithConcurrent(true))

	a := diva.MustNew(opts...)
	mustRun(t, a, warm)
	base := capture(t, a, mustRun(t, a, query))
	if base.fingerprint == 0 {
		t.Fatal("no fingerprint collected")
	}

	b := diva.MustNew(opts...)
	mustRun(t, b, warm)
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	type out struct {
		traj forkTraj
		err  error
	}
	ch := make(chan out, 2)
	for i := 0; i < 2; i++ {
		go func() {
			f, err := diva.Fork(snap, diva.ForkConcurrent(true))
			if err != nil {
				ch <- out{err: err}
				return
			}
			res, err := query.Run(f, nil)
			if err != nil {
				ch <- out{err: err}
				return
			}
			ch <- out{traj: capture(t, f, res)}
		}()
	}
	for i := 0; i < 2; i++ {
		o := <-ch
		if o.err != nil {
			t.Fatalf("fork %d: %v", i, o.err)
		}
		if o.traj != base {
			t.Errorf("fork trajectory diverged from fresh run:\n fork: %+v\n base: %+v", o.traj, base)
		}
	}

	// The snapshot must not have disturbed the source machine.
	cont := capture(t, b, mustRun(t, b, query))
	if cont != base {
		t.Errorf("source machine diverged after snapshot:\n cont: %+v\n base: %+v", cont, base)
	}
}

// TestForkABDSM is the fork matrix over topology × strategy cells: warm
// with the matrix square, query with bitonic sorting, both through the
// data management strategy.
func TestForkABDSM(t *testing.T) {
	cells := []struct{ topo, strat string }{
		{"mesh", "at4"},
		{"torus", "fixedhome"},
		{"hypercube", "at2"},
		{"fattree", "at4k8"},
	}
	warm := diva.Matmul(diva.MatmulConfig{BlockInts: 64, Seed: 1})
	query := diva.Bitonic(diva.BitonicConfig{KeysPerProc: 16, Check: true, Seed: 2})
	for _, cell := range cells {
		cell := cell
		t.Run(cell.topo+"/"+cell.strat, func(t *testing.T) {
			checkForkAB(t, warm, query,
				diva.WithTopologyName(cell.topo, 8, 8),
				diva.WithStrategyName(cell.strat),
				diva.WithSeed(1999))
		})
	}
}

// TestForkABHandOpt pins the fork contract on strategy-free machines under
// kernel sharding: the snapshot captures the sharded cluster state and the
// fork re-shards identically.
func TestForkABHandOpt(t *testing.T) {
	warm := diva.Stencil(diva.StencilConfig{Iters: 3, HaloInts: 32, WithCompute: true, OpUS: 0.5, Check: true, Seed: 7})
	query := diva.BitonicHandOpt(diva.BitonicConfig{KeysPerProc: 32, Check: true, Seed: 9})
	var base *forkTraj
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			checkForkAB(t, warm, query,
				diva.WithMesh(8, 8), diva.WithSeed(1999),
				diva.WithTree(diva.Ary2), diva.WithShards(shards))
			// Cross-check the shard counts against each other too: the
			// sharded fork's trajectory must equal the sequential one.
			m := diva.MustNew(diva.WithMesh(8, 8), diva.WithSeed(1999),
				diva.WithTree(diva.Ary2), diva.WithShards(shards), diva.WithConcurrent(true))
			mustRun(t, m, warm)
			traj := capture(t, m, mustRun(t, m, query))
			if base == nil {
				base = &traj
			} else if traj != *base {
				t.Errorf("shards=%d trajectory diverged from sequential: %+v vs %+v", shards, traj, *base)
			}
		})
	}
}

// TestForkABBoundedCache pins the fork contract with a bounded cache: the
// fork must reinstate the exact entry set (including over-capacity state
// left by refused evictions) and the eviction counters.
func TestForkABBoundedCache(t *testing.T) {
	warm := diva.Matmul(diva.MatmulConfig{BlockInts: 64, Seed: 1})
	query := diva.Bitonic(diva.BitonicConfig{KeysPerProc: 16, Check: true, Seed: 2})
	checkForkAB(t, warm, query,
		diva.WithMesh(4, 4), diva.WithStrategyName("at4"),
		diva.WithSeed(1999), diva.WithCacheCapacity(2048))

	// The cell must actually exercise replacement, or the test is vacuous.
	m := diva.MustNew(diva.WithMesh(4, 4), diva.WithStrategyName("at4"),
		diva.WithSeed(1999), diva.WithCacheCapacity(2048), diva.WithConcurrent(true))
	mustRun(t, m, warm)
	if diva.TotalEvictions(m) == 0 {
		t.Error("warm-up produced no evictions; shrink the cache capacity")
	}
}

// TestForkReseedDivergence pins the reseed contract: forks with distinct
// ForkSeeds diverge (future random placements differ), forks with the same
// ForkSeed are identical, and reseeding never disturbs sibling forks.
func TestForkReseedDivergence(t *testing.T) {
	warm := diva.Matmul(diva.MatmulConfig{BlockInts: 64, Seed: 1})
	query := diva.Bitonic(diva.BitonicConfig{KeysPerProc: 16, Check: true, Seed: 2})
	m := diva.MustNew(diva.WithMesh(8, 8), diva.WithStrategyName("at4"),
		diva.WithSeed(1999), diva.WithConcurrent(true))
	mustRun(t, m, warm)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	run := func(opts ...diva.ForkOption) forkTraj {
		f, err := diva.Fork(snap, append(opts, diva.ForkConcurrent(true))...)
		if err != nil {
			t.Fatalf("Fork: %v", err)
		}
		return capture(t, f, mustRun(t, f, query))
	}
	plain := run()
	s1 := run(diva.ForkSeed(1))
	s2 := run(diva.ForkSeed(2))
	s1again := run(diva.ForkSeed(1))
	if s1 != s1again {
		t.Errorf("same ForkSeed diverged: %+v vs %+v", s1, s1again)
	}
	if s1.fingerprint == s2.fingerprint {
		t.Errorf("distinct ForkSeeds did not diverge: both %#x", s1.fingerprint)
	}
	if s1.fingerprint == plain.fingerprint {
		t.Errorf("reseeded fork tracked the un-reseeded fork: both %#x", s1.fingerprint)
	}
	// The un-reseeded fork still replays the source exactly.
	cont := capture(t, m, mustRun(t, m, query))
	if plain != cont {
		t.Errorf("un-reseeded fork diverged from continued source: %+v vs %+v", plain, cont)
	}
}
