// Barnes-Hut N-body simulation on DIVA: the paper's third application
// (§3.3), adapted from SPLASH-2. A Plummer star cluster evolves on a 4×4
// simulated mesh; every body and octree cell is a global variable, the
// octree is rebuilt every step under per-cell locks, and the costzones
// scheme keeps the work balanced while translating physical locality into
// mesh locality.
//
// Run with:
//
//	go run ./examples/nbody
package main

import (
	"fmt"
	"os"

	"diva"
)

func main() {
	m, err := diva.New(
		diva.WithMesh(4, 4),
		diva.WithSeed(17),
		diva.WithStrategyName("at4"), // the paper's best variant for Barnes-Hut
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbody:", err)
		os.Exit(1)
	}
	col := diva.NewCollector(m)

	cfg := diva.BarnesHutConfig{
		N:           1024,
		Steps:       5,
		MeasureFrom: 1,
		Theta:       1.0,
		Dt:          0.01,
		Seed:        2024,
		WithCompute: true,
	}
	initial := diva.Plummer(cfg.N, cfg.Seed)
	e0 := diva.Energy(initial, 0.05)

	res, err := diva.BarnesHut(cfg).Run(m, col)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbody:", err)
		os.Exit(1)
	}
	nbody := res.Detail.(diva.BarnesHutResult)

	final := diva.FinalBodies(m, nbody)
	e1 := diva.Energy(final, 0.05)

	fmt.Printf("simulated %d bodies for %d steps on %s (%s)\n",
		cfg.N, cfg.Steps, m.Topo, m.Strat.Name())
	fmt.Printf("octree depth %d, %d force interactions in the last step\n",
		nbody.MaxDepth, nbody.Interactions)
	fmt.Printf("energy drift: %.4f -> %.4f (%.2f%%)\n", e0, e1, 100*(e1-e0)/(-e0))
	fmt.Printf("simulated time: %.1f s\n", res.ElapsedUS/1e6)

	fmt.Println("\nper-phase metrics over the measured steps:")
	for _, ph := range col.PhaseNames() {
		r, _ := col.Phase(ph)
		fmt.Printf("  %-10s time %8.2f s   congestion %7d msgs   compute %6.2f s\n",
			ph, r.TimeUS/1e6, r.Cong.MaxMsgs, r.MaxComputeUS/1e6)
	}

	fmt.Println("\nwork balance (bodies per processor after costzones):")
	// Lay the counts out as the mesh grid; on a non-mesh topology print
	// them as one flat row.
	mm, isMesh := m.MeshTopo()
	for pr, n := range nbody.BodiesPerProc {
		fmt.Printf("%4d", n)
		if isMesh && (pr+1)%mm.Cols == 0 {
			fmt.Println()
		}
	}
	if !isMesh {
		fmt.Println()
	}
}
