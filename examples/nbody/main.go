// Barnes-Hut N-body simulation on DIVA: the paper's third application
// (§3.3), adapted from SPLASH-2. A Plummer star cluster evolves on a 4×4
// simulated mesh; every body and octree cell is a global variable, the
// octree is rebuilt every step under per-cell locks, and the costzones
// scheme keeps the work balanced while translating physical locality into
// mesh locality.
//
// Run with:
//
//	go run ./examples/nbody
package main

import (
	"fmt"
	"os"

	"diva/internal/apps/barneshut"
	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/decomp"
	"diva/internal/metrics"
)

func main() {
	m := core.NewMachine(core.Config{
		Rows: 4, Cols: 4, Seed: 17,
		Tree:     decomp.Ary4, // the paper's best variant for Barnes-Hut
		Strategy: accesstree.Factory(),
	})
	col := metrics.New(m.Net)

	cfg := barneshut.Config{
		N:           1024,
		Steps:       5,
		MeasureFrom: 1,
		Theta:       1.0,
		Dt:          0.01,
		Seed:        2024,
		WithCompute: true,
	}
	initial := barneshut.Plummer(cfg.N, cfg.Seed)
	e0 := barneshut.Energy(initial, 0.05)

	res, err := barneshut.Run(m, cfg, col)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbody:", err)
		os.Exit(1)
	}

	final := barneshut.FinalBodies(m, res)
	e1 := barneshut.Energy(final, 0.05)

	fmt.Printf("simulated %d bodies for %d steps on %s (%s)\n",
		cfg.N, cfg.Steps, m.Topo, m.Strat.Name())
	fmt.Printf("octree depth %d, %d force interactions in the last step\n",
		res.MaxDepth, res.Interactions)
	fmt.Printf("energy drift: %.4f -> %.4f (%.2f%%)\n", e0, e1, 100*(e1-e0)/(-e0))
	fmt.Printf("simulated time: %.1f s\n", res.ElapsedUS/1e6)

	fmt.Println("\nper-phase metrics over the measured steps:")
	for _, ph := range col.PhaseNames() {
		r, _ := col.Phase(ph)
		fmt.Printf("  %-10s time %8.2f s   congestion %7d msgs   compute %6.2f s\n",
			ph, r.TimeUS/1e6, r.Cong.MaxMsgs, r.MaxComputeUS/1e6)
	}

	fmt.Println("\nwork balance (bodies per processor after costzones):")
	// Lay the counts out as the mesh grid; on a non-mesh topology print
	// them as one flat row.
	mm, isMesh := m.MeshTopo()
	for pr, n := range res.BodiesPerProc {
		fmt.Printf("%4d", n)
		if isMesh && (pr+1)%mm.Cols == 0 {
			fmt.Println()
		}
	}
	if !isMesh {
		fmt.Println()
	}
}
