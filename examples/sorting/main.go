// Bitonic sorting on DIVA: the paper's second application (§3.2). Each of
// the 16 processors of a 4×4 mesh simulates one wire of Batcher's bitonic
// sorting circuit and holds its keys in one global variable; merge&split
// steps read the partner's variable through the data management strategy.
//
// Processor ident-numbers are the decomposition tree's leaf numbers, so the
// circuit's locality (mergers over 2^i neighboring wires) matches the mesh
// decomposition — which is exactly what the access tree strategy exploits.
//
// Run with:
//
//	go run ./examples/sorting
package main

import (
	"fmt"
	"os"

	"diva"
)

func main() {
	// Show the circuit first (Figure 5 of the paper is the P=8 instance).
	fmt.Println("bitonic circuit for 8 wires (steps of parallel comparators):")
	for si, step := range diva.BitonicCircuit(8) {
		fmt.Printf("  step %d:", si)
		for _, c := range step {
			dir := "asc"
			if !c.Asc {
				dir = "desc"
			}
			fmt.Printf("  [%d:%d]%s", c.Lo, c.Hi, dir)
		}
		fmt.Println()
	}

	// Sort 16*512 keys on a 4x4 mesh with the 2-4-ary access tree (the
	// variant the paper found best for sorting).
	m, err := diva.New(
		diva.WithMesh(4, 4),
		diva.WithSeed(3),
		diva.WithStrategyName("at2k4"),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sorting:", err)
		os.Exit(1)
	}
	res, err := diva.Bitonic(diva.BitonicConfig{
		KeysPerProc: 512,
		Check:       true,
		WithCompute: true,
		CompareUS:   1.0,
		Seed:        99,
	}).Run(m, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sorting:", err)
		os.Exit(1)
	}
	sorted := res.Detail.(diva.BitonicResult)
	c := m.Net.Congestion(nil)
	fmt.Printf("\nsorted %d keys on %s with %s\n", 512*m.P(), m.Topo, m.Strat.Name())
	fmt.Printf("merge&split steps: %d, simulated time %.1f ms, congestion %d bytes\n",
		sorted.Steps, res.ElapsedUS/1000, c.MaxBytes)
	fmt.Printf("output verified sorted: %v\n", res.Verified)
}
