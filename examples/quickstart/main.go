// Quickstart: a minimal DIVA program on the public API.
//
// Eight simulated processors on a 2×4 mesh share one global variable
// through the access tree strategy: everyone reads it (copies spread along
// the access tree), one processor updates it (the other copies are
// invalidated by a multicast along the tree), and everyone reads again.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"diva"
)

func main() {
	m, err := diva.New(
		diva.WithMesh(2, 4),
		diva.WithSeed(42),
		diva.WithStrategyName("at2"), // 2-ary access trees
	)
	if err != nil {
		panic(err)
	}

	// A global variable: 64 bytes, created on processor 0.
	greeting := m.AllocAt(0, 64, "hello from processor 0")

	err = m.Run(func(p *diva.Proc) {
		// Transparent read: the value migrates/replicates as needed.
		v := p.Read(greeting)
		if p.ID == 3 {
			fmt.Printf("p%d read: %q at t=%.0fus\n", p.ID, v, p.Now())
		}
		p.Barrier()

		// One writer; the access tree invalidates all other copies.
		if p.ID == 5 {
			p.Write(greeting, "updated by processor 5")
		}
		p.Barrier()

		v = p.Read(greeting)
		if p.ID == 0 {
			fmt.Printf("p%d read: %q at t=%.0fus\n", p.ID, v, p.Now())
		}
	})
	if err != nil {
		panic(err)
	}

	c := m.Net.Congestion(nil)
	fmt.Printf("simulated time: %.0fus, congestion: %d msgs / %d bytes on the busiest link\n",
		m.Elapsed(), c.MaxMsgs, c.MaxBytes)
	fmt.Printf("strategy: %s on %s\n", m.Strat.Name(), m.Topo)
}
