// Matrix-square walkthrough: the paper's first application (§3.1) on an
// 8×8 mesh, comparing all three data management approaches on the same
// input through the unified diva.Workload driver, with the result verified
// against a sequential computation.
//
// Run with:
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"os"

	"diva"
)

func main() {
	const side = 8
	cfg := diva.MatmulConfig{
		BlockInts: 256, // each block is a 16x16 submatrix
		Check:     true,
		Seed:      7,
	}

	type entry struct {
		name     string
		strategy string // registry name; "" selects the hand-optimized program
	}
	for _, e := range []entry{
		{"hand-optimized message passing", ""},
		{"4-ary access tree", "at4"},
		{"fixed home (ownership scheme)", "fixedhome"},
	} {
		opts := []diva.Option{diva.WithMesh(side, side), diva.WithSeed(1)}
		w := diva.MatmulHandOpt(cfg)
		if e.strategy == "" {
			opts = append(opts, diva.WithTree(diva.Ary2))
		} else {
			opts = append(opts, diva.WithStrategyName(e.strategy))
			w = diva.Matmul(cfg)
		}
		m, err := diva.New(opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "matmul:", err)
			os.Exit(1)
		}
		res, err := w.Run(m, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "matmul:", err)
			os.Exit(1)
		}
		c := m.Net.Congestion(nil)
		fmt.Printf("%-32s time %8.1f ms   congestion %8d bytes   verified=%v\n",
			e.name, res.ElapsedUS/1000, c.MaxBytes, res.Verified)
	}
	fmt.Println("\nThe access tree beats the fixed home on both metrics; the hand-optimized")
	fmt.Println("strategy (full knowledge of the access pattern) is the lower bound.")
}
