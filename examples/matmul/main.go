// Matrix-square walkthrough: the paper's first application (§3.1) on an
// 8×8 mesh, comparing all three data management approaches on the same
// input, with the result verified against a sequential computation.
//
// Run with:
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"os"

	"diva/internal/apps/matmul"
	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
)

func main() {
	const side = 8
	cfg := matmul.Config{
		BlockInts: 256, // each block is a 16x16 submatrix
		Check:     true,
		Seed:      7,
	}

	type entry struct {
		name string
		fact core.Factory
		spec decomp.Spec
	}
	for _, e := range []entry{
		{"hand-optimized message passing", nil, decomp.Ary2},
		{"4-ary access tree", accesstree.Factory(), decomp.Ary4},
		{"fixed home (ownership scheme)", fixedhome.Factory(), decomp.Ary4},
	} {
		m := core.NewMachine(core.Config{
			Rows: side, Cols: side, Seed: 1, Tree: e.spec, Strategy: e.fact,
		})
		var (
			res matmul.Result
			err error
		)
		if e.fact == nil {
			res, err = matmul.RunHandOpt(m, cfg)
		} else {
			res, err = matmul.RunDSM(m, cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "matmul:", err)
			os.Exit(1)
		}
		c := m.Net.Congestion(nil)
		fmt.Printf("%-32s time %8.1f ms   congestion %8d bytes   verified=%v\n",
			e.name, res.ElapsedUS/1000, c.MaxBytes, res.Verified)
	}
	fmt.Println("\nThe access tree beats the fixed home on both metrics; the hand-optimized")
	fmt.Println("strategy (full knowledge of the access pattern) is the lower bound.")
}
