package diva

import "diva/internal/core"

// Snapshot is a deep copy of a quiescent machine's simulated state,
// captured by Machine.Snapshot. It is immutable: any number of machines
// can be forked from one snapshot, concurrently. The canonical use is
// simulation-as-a-service — run a warm-up workload once, snapshot, then
// fork per query — and the same capture doubles as a checkpoint for
// crash-consistent long runs.
//
// Snapshots are only legal at quiescence (every spawned process finished,
// no event pending, no transaction in flight): simulated processes are
// goroutines whose stacks cannot be copied. Machine.Snapshot reports a
// descriptive error otherwise.
type Snapshot = core.Snapshot

// ForkOption tunes Fork.
type ForkOption func(*core.ForkOptions)

// ForkSeed re-derives the fork's random streams (the machine RNG and the
// strategy's private stream) from seed: forks with distinct seeds diverge
// in every future random draw while inheriting the snapshot's state
// unchanged. Without it, a fork replays the source machine's streams —
// fork-then-run is bit-identical to continuing the source.
func ForkSeed(seed uint64) ForkOption {
	return func(o *core.ForkOptions) { o.Reseed, o.Seed = true, seed }
}

// ForkConcurrent overrides the snapshot's Concurrent flag (see
// WithConcurrent) for this fork. Servers fork with true so concurrent
// queries do not fight over the process-wide GOMAXPROCS pin; simulated
// results are unaffected either way.
func ForkConcurrent(on bool) ForkOption {
	return func(o *core.ForkOptions) { o.Concurrent = &on }
}

// Fork builds an independent machine resuming exactly where snap was
// captured: running a workload on the fork is bit-identical — kernel
// fingerprint and all simulated metrics — to running it on the source
// machine. The fork shares no mutable state with the source or with
// sibling forks (variable values are shared by reference; they are
// immutable by the Write contract).
func Fork(snap *Snapshot, opts ...ForkOption) (*Machine, error) {
	var o core.ForkOptions
	for _, f := range opts {
		f(&o)
	}
	return snap.Fork(o)
}
