GO ?= go
DATE := $(shell date +%Y-%m-%d)

.PHONY: all build test vet fmt bench bench-check check-imports

all: vet build test check-imports

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# check-imports fails if any example or command imports diva/internal/...:
# the public façade (diva, diva/strategy, diva/topology, diva/experiments)
# is their only supported dependency.
check-imports:
	@if grep -RnE '"diva/internal/[^"]*"' examples cmd; then \
		echo "error: examples/ and cmd/ must use the public diva API, not diva/internal/..." >&2; \
		exit 1; \
	fi
	@echo "check-imports: examples/ and cmd/ are clean"

# bench runs every figure benchmark (plus the kernel-queue and message-hop
# micro-benchmarks) once and records ns/op, allocs/op and all reported
# simulated-result metrics as BENCH_<date>.json, keeping the perf
# trajectory machine-readable across PRs (see PERF.md).
BENCH_PATTERN = 'BenchmarkFig|BenchmarkKernelQueue|BenchmarkMessageHop|BenchmarkShardScaling|BenchmarkGraphRoute|BenchmarkReactiveTransport'
bench:
	$(GO) test -run '^$$' -bench $(BENCH_PATTERN) -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson > BENCH_$(DATE).json
	@echo wrote BENCH_$(DATE).json

# bench-check runs the benchmark suite into a scratch file (the committed
# BENCH_<date>.json baseline is never clobbered) and validates the pipeline
# end to end: the JSON must parse and cover every BenchmarkFig the test
# binary lists, and `benchjson -diff` gates it against the latest committed
# BENCH_*.json in the tree — failing on >50% ns/op regressions and, with zero
# tolerance, on ANY simulated-metric drift (the metrics are deterministic,
# so a drift means the simulation semantics changed).
# The baseline is the newest BENCH_*.json known to git (a local `make
# bench` for a new date must not silently replace the gate's reference);
# MAX_REGRESS is overridable because absolute ns/op is machine-relative —
# CI compares cross-machine and passes a loose bound, the simulated-metric
# check stays zero-tolerance everywhere.
# MAX_ALLOC_REGRESS gates allocs/op with a tight default: allocation
# counts are near-deterministic and machine-independent, so unlike ns/op
# the bound does not need to be loosened for cross-machine CI runs.
# BENCH_REQUIRE names benchmark families (prefixes) that must be present
# both in the fresh run and in the committed baseline: -expect only covers
# what the current test binary lists, so without the baseline check a new
# benchmark family could land without ever refreshing BENCH_<date>.json.
BASELINE = $(lastword $(sort $(shell git ls-files 'BENCH_*.json')))
BENCH_REQUIRE = BenchmarkShardScaling,BenchmarkGraphRoute,BenchmarkReactiveTransport
MAX_REGRESS ?= 50
MAX_ALLOC_REGRESS ?= 10
bench-check:
	$(GO) test -run '^$$' -bench $(BENCH_PATTERN) -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson > .bench-new.json
	$(GO) test -run '^$$' -list $(BENCH_PATTERN) . | grep '^Benchmark' > .benchlist.txt
	$(GO) run ./cmd/benchjson -check .bench-new.json -expect .benchlist.txt -require $(BENCH_REQUIRE)
	@if [ -n "$(BASELINE)" ]; then \
		$(GO) run ./cmd/benchjson -check "$(BASELINE)" -require $(BENCH_REQUIRE); \
		$(GO) run ./cmd/benchjson -diff -max-regress $(MAX_REGRESS) \
			-max-alloc-regress $(MAX_ALLOC_REGRESS) "$(BASELINE)" .bench-new.json; \
	else \
		echo "bench-check: no committed BENCH_*.json baseline, skipping diff"; \
	fi
	@rm -f .benchlist.txt .bench-new.json
