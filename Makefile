GO ?= go
DATE := $(shell date +%Y-%m-%d)

.PHONY: all build test vet fmt bench bench-check check-imports

all: vet build test check-imports

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# check-imports fails if any example or command imports diva/internal/...:
# the public façade (diva, diva/strategy, diva/topology, diva/experiments)
# is their only supported dependency.
check-imports:
	@if grep -RnE '"diva/internal/[^"]*"' examples cmd; then \
		echo "error: examples/ and cmd/ must use the public diva API, not diva/internal/..." >&2; \
		exit 1; \
	fi
	@echo "check-imports: examples/ and cmd/ are clean"

# bench runs every figure benchmark once and records ns/op plus all
# reported simulated-result metrics as BENCH_<date>.json, keeping the perf
# trajectory machine-readable across PRs (see PERF.md).
bench:
	$(GO) test -run '^$$' -bench BenchmarkFig -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson > BENCH_$(DATE).json
	@echo wrote BENCH_$(DATE).json

# bench-check runs bench and then validates the emitted JSON: it must
# parse and contain a completed entry for every BenchmarkFig the test
# binary lists (guards the cmd/benchjson pipeline from silent drift).
bench-check: bench
	$(GO) test -run '^$$' -list 'BenchmarkFig.*' . | grep '^Benchmark' > .benchlist.txt
	$(GO) run ./cmd/benchjson -check BENCH_$(DATE).json -expect .benchlist.txt
	@rm -f .benchlist.txt
