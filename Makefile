GO ?= go
DATE := $(shell date +%Y-%m-%d)

.PHONY: all build test vet fmt bench bench-check

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# bench runs every figure benchmark once and records ns/op plus all
# reported simulated-result metrics as BENCH_<date>.json, keeping the perf
# trajectory machine-readable across PRs (see PERF.md).
bench:
	$(GO) test -run '^$$' -bench BenchmarkFig -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson > BENCH_$(DATE).json
	@echo wrote BENCH_$(DATE).json

# bench-check runs bench and then validates the emitted JSON: it must
# parse and contain a completed entry for every BenchmarkFig the test
# binary lists (guards the cmd/benchjson pipeline from silent drift).
bench-check: bench
	$(GO) test -run '^$$' -list 'BenchmarkFig.*' . | grep '^Benchmark' > .benchlist.txt
	$(GO) run ./cmd/benchjson -check BENCH_$(DATE).json -expect .benchlist.txt
	@rm -f .benchlist.txt
