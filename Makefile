GO ?= go
DATE := $(shell date +%Y-%m-%d)

.PHONY: all build test vet fmt bench

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# bench runs every figure benchmark once and records ns/op plus all
# reported simulated-result metrics as BENCH_<date>.json, keeping the perf
# trajectory machine-readable across PRs (see PERF.md).
bench:
	$(GO) test -run '^$$' -bench BenchmarkFig -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson > BENCH_$(DATE).json
	@echo wrote BENCH_$(DATE).json
