// Package diva is the root of a reproduction of "Data Management in
// Networks: Experimental Evaluation of a Provably Good Strategy" (Krick,
// Meyer auf der Heide, Räcke, Vöcking, Westermann; SPAA 1999): the DIVA
// (Distributed Variables) library — transparent access to global variables
// on a simulated parallel machine — together with the access tree data
// management strategy, the fixed home baseline, the paper's three
// applications (matrix multiplication, bitonic sorting, Barnes-Hut) and a
// harness that regenerates every figure of the evaluation.
//
// The library lives under internal/: start with internal/core (the DIVA
// API) and internal/core/accesstree (the paper's contribution).
//
// The network is pluggable (internal/mesh.Topology): the paper's 2D mesh
// is the default and is bit-identical to the original mesh-only
// implementation, and a 2D torus, a hypercube and a binary fat-tree run
// the same strategies unchanged — the hierarchical decomposition
// (internal/decomp) is computed from the topology (grid rectangles for
// mesh/torus, processor-id spans for the rest), and the paper's modular
// embedding generalizes per region kind. The "topologies" experiment
// (internal/experiments, cmd/experiments -fig topologies) sweeps all
// strategies across the four networks at matched processor counts;
// cmd/divasim takes a -topology flag for one-off runs.
//
// The simulator's hot path is allocation-free by design (see PERF.md for
// the profile-driven rationale and the baseline-vs-after numbers): the
// event kernel is a hand-rolled 4-ary min-heap over unboxed tagged-union
// events (proc wakeup / typed callback / closure fallback), message
// delivery recycles Msg objects through a free list and schedules typed
// events instead of closures, and the access tree keeps its per-variable
// protocol state in dense slice-indexed node tables. Determinism is
// load-bearing — identical seeds must give identical event orders and
// metrics — and is pinned by golden regression tests (determinism_test.go)
// via the kernel's event-order fingerprint.
package diva
