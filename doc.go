// Package diva is the root of a reproduction of "Data Management in
// Networks: Experimental Evaluation of a Provably Good Strategy" (Krick,
// Meyer auf der Heide, Räcke, Vöcking, Westermann; SPAA 1999): the DIVA
// (Distributed Variables) library — transparent access to global variables
// on a simulated mesh-connected parallel machine — together with the access
// tree data management strategy, the fixed home baseline, the paper's three
// applications (matrix multiplication, bitonic sorting, Barnes-Hut) and a
// harness that regenerates every figure of the evaluation.
//
// See README.md for an overview, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record. The library lives under
// internal/: start with internal/core (the DIVA API) and
// internal/core/accesstree (the paper's contribution).
package diva
