// Package diva is an embeddable reproduction of "Data Management in
// Networks: Experimental Evaluation of a Provably Good Strategy" (Krick,
// Meyer auf der Heide, Räcke, Vöcking, Westermann; SPAA 1999): the DIVA
// (Distributed Variables) library — transparent access to global variables
// on a simulated parallel machine — together with the access tree data
// management strategy, the fixed home baseline, the paper's three
// applications and a harness that regenerates every figure of the
// evaluation.
//
// # The public API
//
// This package is the façade applications link against, the way the
// paper's DIVA is a library application code links against. Build a
// machine with New and functional options, returning validated errors:
//
//	m, err := diva.New(
//		diva.WithMesh(16, 16),
//		diva.WithStrategyName("at4"),
//		diva.WithSeed(1999),
//	)
//
// Strategies (fixedhome, at2, at4, at16, at2k4, at4k8, at4k16, atrandom)
// and topologies (mesh, torus, hypercube, fattree) are selectable by
// string through the name-keyed registries in diva/strategy and
// diva/topology — the single source of truth behind every -strategy and
// -topology flag — or passed explicitly with WithStrategy and
// WithTopology. Registries are open: embedders Register their own
// strategies and interconnects and every existing workload runs on them
// unchanged.
//
// SPMD programs run one process per processor and access shared state
// exclusively through the Proc operations:
//
//	v := p.Alloc(size, value)   // create a global variable
//	x := p.Read(v)              // transparent read (may migrate copies)
//	p.Write(v, y)               // transparent write (invalidates copies)
//	p.Lock(v) / p.Unlock(v)     // per-variable mutual exclusion
//	p.Barrier()                 // global barrier synchronization
//
// The paper's applications — matrix multiplication, bitonic sorting,
// Barnes-Hut — implement the Workload interface, so any application runs
// on any (topology × strategy) cell through one driver; diva/experiments
// exposes the figure harness the same way. cmd/divasim and
// cmd/experiments are thin CLIs over exactly this surface.
//
// # Specs, snapshot/fork and the service
//
// A run is serializable: diva/spec defines the JSON-friendly Spec naming
// the machine (topology, strategy, tree, network timing, seed, shards,
// cache capacity) and the workload with its knobs, with typed per-field
// validation. FromSpec turns a Spec into a machine and a workload, so the
// divasim command line, a -spec document, an embedder and the HTTP
// service all describe the identical, bit-reproducible run.
//
// A quiescent machine (every process finished, no event pending) can be
// captured with Machine.Snapshot and resumed any number of times with
// Fork: fork-then-run is bit-identical — event-order fingerprint and all
// simulated metrics — to continuing the source machine, and concurrent
// forks share no mutable state. The canonical use is
// simulation-as-a-service: run a warm-up workload once, snapshot, fork
// per query. diva/serve wraps this as an HTTP server (divasim serve) with
// POST /v1/run, POST/GET /v1/snapshots, GET /v1/registries and
// GET /v1/healthz, a bounded worker pool and 429 load shedding; the same
// capture doubles as a checkpoint for crash-consistent long runs —
// diva/snapstore persists it to disk (atomic rename, checksummed,
// versioned) and a fork from the loaded state is bit-identical to a fork
// from the live one, across process restarts. ForkSeed re-derives a
// fork's random streams so independent scenario branches diverge from a
// shared warm state.
//
// Long runs are cancellable without giving up determinism. RunContext and
// WorkloadContext tie a run to a context.Context; cancellation (or an
// expired deadline, or the spec's timeout_ms through the service) raises
// a cooperative flag the kernel polls every 1024 events — zero cost when
// unarmed — and the run returns ErrCanceled (a *CanceledError carrying
// progress diagnostics). The contract is all-or-nothing at the
// observation level: a canceled machine is permanently stopped and can
// never be snapshotted, so no partially-executed state escapes, while the
// snapshot the machine was forked from — and every sibling fork, and the
// continued source — replay bit-identically as if the canceled run had
// never happened.
//
// # Faults and irregular networks
//
// diva/fault injects link failures and node churn into any run. A
// schedule is either declared explicitly (timed link-down/link-up/
// node-down/node-up events, WithFaults) or drawn deterministically from
// the machine seed (WithFaultGen); a spec document declares either form
// under its "fault" key, and both build bit-identical machines when they
// describe the same events. Faults are applied lazily in the network's
// deterministic routing order — no extra kernel events — so faulty runs
// keep every determinism guarantee: fingerprints are identical at any
// kernel shard count, and snapshot/fork works mid-schedule. A message
// whose shortest route crosses a dead link re-routes over the spanning
// forest of the live graph (path stretch); a message into a partitioned
// or churned-out region is held and retransmitted when the schedule heals
// it. Network.FaultStats reports availability, stretch and retry traffic.
//
// Irregular interconnects to degrade come from the graph:* topology
// registry entries (graph:regular, graph:er, graph:degraded) — arbitrary
// connected graphs with precomputed BFS shortest-path route tables — and
// the "faults" experiment sweeps strategy degradation under rising fault
// rates on the mesh and the degraded mesh.
//
// Holding a message until the exact heal time is an oracle: no simulated
// protocol ever observes the failure. WithRecovery(RecoveryReactive)
// switches a run to reactive fault tolerance — messages crossing a
// failure point are silently dropped, every cross-node message is
// acknowledged, and senders detect failures by retransmission timeout
// (WithAckTransport tunes the initial timeout, retry budget and
// exponential backoff; timeout jitter comes from dedicated per-node RNG
// streams derived from the run seed). After the retry budget is spent the
// strategy recovers at the protocol level: the fixed home strategy fails
// a dead home over to its rank-order successor, the access tree re-issues
// over the re-embedded spanning forest; receiver-side per-channel
// deduplication keeps both protocol-safe. Reactive runs simulate a
// different (more faithful) machine than oracle runs, but carry the same
// guarantees: fingerprints are identical across kernel shard counts,
// declared-vs-drawn schedules and snapshot/fork — including forks taken
// mid-recovery — and Network.FaultStats adds drop, ack, retransmission,
// detection-latency, failover and re-issue counters. The default remains
// the oracle mode; spec documents select "recovery": "reactive" with
// ack_timeout_us, max_retries and backoff, and the "recovery" experiment
// compares the two modes across strategies and network shapes.
//
// # The implementation
//
// The library lives under internal/ and is re-exported here by type
// alias, so the public machine is bit-for-bit the internal one: start
// with internal/core (the DIVA library) and internal/core/accesstree
// (the paper's contribution).
//
// The network is pluggable (internal/mesh.Topology): the paper's 2D mesh
// is the default and is bit-identical to the original mesh-only
// implementation, and a 2D torus, a hypercube and a binary fat-tree run
// the same strategies unchanged — the hierarchical decomposition
// (internal/decomp) is computed from the topology, and the paper's
// modular embedding generalizes per region kind. The "topologies"
// experiment sweeps all strategies across the four networks at matched
// processor counts.
//
// The simulator's hot path is allocation-free by design (see PERF.md for
// the profile-driven rationale and the baseline-vs-after numbers): the
// event kernel is a hand-rolled 4-ary min-heap over unboxed tagged-union
// events (proc wakeup / typed callback / closure fallback), message
// delivery recycles Msg objects through a free list and schedules typed
// events instead of closures, and the access tree keeps its per-variable
// protocol state in dense slice-indexed node tables. Determinism is
// load-bearing — identical seeds must give identical event orders and
// metrics — and is pinned by golden regression tests (determinism_test.go,
// publicapi_test.go) via the kernel's event-order fingerprint, driven
// through both the internal construction path and this façade.
package diva
